package cjoin

import (
	"fmt"
	"strings"
	"time"

	"cjoin/internal/agg"
	"cjoin/internal/core"
	"cjoin/internal/engine"
	"cjoin/internal/expr"
	"cjoin/internal/query"
)

// Query registers a SQL star query with the pipeline at the current
// snapshot and returns immediately; results arrive after one full cycle
// of the continuous scan.
func (p *Pipeline) Query(sql string) (*RunningQuery, error) {
	return p.QueryAt(sql, p.w.Begin())
}

// QueryAt registers a query pinned to an explicit snapshot.
func (p *Pipeline) QueryAt(sql string, snap Snapshot) (*RunningQuery, error) {
	star, err := p.w.starSchema()
	if err != nil {
		return nil, err
	}
	b, err := query.ParseBind(sql, star)
	if err != nil {
		return nil, err
	}
	b.Snapshot = snap
	h, err := p.p.Submit(b)
	if err != nil {
		return nil, err
	}
	return &RunningQuery{w: p.w, h: h, bound: b}, nil
}

// RunningQuery is a query registered with a pipeline.
type RunningQuery struct {
	w     *Warehouse
	h     core.Handle
	bound *query.Bound
}

// Wait blocks until the query completes and returns its result.
func (q *RunningQuery) Wait() (*Result, error) {
	res := q.h.Wait()
	if res.Err != nil {
		return nil, res.Err
	}
	return q.w.decodeResults(q.bound, res.Rows), nil
}

// Progress reports the fraction of the scan cycle completed, in [0,1] —
// the paper's "reliable progress indicator" (§3.2.3).
func (q *RunningQuery) Progress() float64 { return q.h.Progress() }

// SubmissionTime is how long registration took (the paper's submission
// time metric).
func (q *RunningQuery) SubmissionTime() time.Duration { return q.h.Submission() }

// ETA estimates time to completion from the current scan rate (§3.2.3 of
// the paper). ok is false until the first progress is observable.
func (q *RunningQuery) ETA() (eta time.Duration, ok bool) { return q.h.ETA() }

// Value is one output cell.
type Value struct {
	isStr   bool
	isFloat bool
	i       int64
	f       float64
	s       string
}

// Int returns the integer value (0 for strings).
func (v Value) Int() int64 { return v.i }

// Float returns the value as float64.
func (v Value) Float() float64 {
	if v.isFloat {
		return v.f
	}
	return float64(v.i)
}

// String renders the cell.
func (v Value) String() string {
	switch {
	case v.isStr:
		return v.s
	case v.isFloat:
		return fmt.Sprintf("%.4g", v.f)
	default:
		return fmt.Sprintf("%d", v.i)
	}
}

// Result is a decoded query result: grouped rows with dictionary-decoded
// string columns.
type Result struct {
	Columns []string
	rows    [][]Value
}

// NumRows returns the number of result rows.
func (r *Result) NumRows() int { return len(r.rows) }

// Row returns result row i.
func (r *Result) Row(i int) []Value { return r.rows[i] }

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var sb strings.Builder
	cells := [][]string{r.Columns}
	for _, row := range r.rows {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = v.String()
		}
		cells = append(cells, line)
	}
	widths := make([]int, len(r.Columns))
	for _, line := range cells {
		for c, cell := range line {
			if c < len(widths) && len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, line := range cells {
		for c, cell := range line {
			fmt.Fprintf(&sb, "%-*s", widths[c]+2, cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// decodeResults converts raw aggregation output into a Result, decoding
// dictionary-encoded group columns back to strings.
func (w *Warehouse) decodeResults(b *query.Bound, rows []agg.Result) *Result {
	res := &Result{Columns: append(append([]string{}, b.GroupNames...), b.AggNames...)}
	for _, r := range rows {
		line := make([]Value, 0, len(r.Group)+len(r.Ints))
		for gi, gv := range r.Group {
			line = append(line, w.decodeGroupValue(b, gi, gv))
		}
		for ai := range r.Ints {
			spec := b.Aggs[ai]
			if spec.Fn == agg.Avg {
				line = append(line, Value{isFloat: true, f: r.Value(ai, spec)})
			} else {
				line = append(line, Value{i: r.Ints[ai]})
			}
		}
		res.rows = append(res.rows, line)
	}
	return res
}

func (w *Warehouse) decodeGroupValue(b *query.Bound, gi int, v int64) Value {
	col, ok := b.GroupBy[gi].(expr.Col)
	if !ok {
		return Value{i: v}
	}
	tab := b.Schema.Fact
	if col.Slot > 0 {
		tab = b.Schema.Dims[col.Slot-1]
	}
	if d := tab.Dicts[col.Idx]; d != nil {
		if s, ok := d.Decode(v); ok {
			return Value{isStr: true, s: s}
		}
	}
	return Value{i: v}
}

// Baseline is a conventional query-at-a-time engine over the same
// warehouse, for comparing against CJOIN.
type Baseline struct {
	w   *Warehouse
	eng *engine.Engine
}

// BaselineEngine returns a conventional engine configured like one of the
// paper's comparison systems: "systemx" or "postgres".
func (w *Warehouse) BaselineEngine(system string) (*Baseline, error) {
	star, err := w.starSchema()
	if err != nil {
		return nil, err
	}
	var cfg engine.Config
	switch system {
	case "systemx":
		cfg = engine.SystemXConfig()
	case "postgres":
		cfg = engine.PostgresConfig()
	default:
		return nil, fmt.Errorf("cjoin: unknown baseline %q (want systemx or postgres)", system)
	}
	return &Baseline{w: w, eng: engine.New(star, cfg)}, nil
}

// Query executes sql to completion with a private query-at-a-time plan.
func (b *Baseline) Query(sql string) (*Result, error) {
	star, err := b.w.starSchema()
	if err != nil {
		return nil, err
	}
	q, err := query.ParseBind(sql, star)
	if err != nil {
		return nil, err
	}
	q.Snapshot = b.w.Begin()
	rows, err := b.eng.Execute(q)
	if err != nil {
		return nil, err
	}
	return b.w.decodeResults(q, rows), nil
}
