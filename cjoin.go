// Package cjoin is a Go implementation of CJOIN, the shared join operator
// for highly concurrent data warehouses introduced by Candea, Polyzotis
// and Vingralek ("A Scalable, Predictable Join Operator for Highly
// Concurrent Data Warehouses", VLDB 2009).
//
// The package offers a small warehouse engine built around one idea: all
// concurrent star queries execute inside a single, always-on physical
// plan that shares the fact-table scan, the join computation, and the
// dimension tuple storage across every in-flight query. A new query
// latches onto the running plan at any moment and completes after one
// full cycle of the continuous scan, which makes response times nearly
// independent of the number of concurrent queries.
//
// Basic use:
//
//	w := cjoin.NewWarehouse(cjoin.DiskModel{})
//	// create dimension and fact tables, load rows, define the star...
//	p, _ := w.OpenPipeline(cjoin.PipelineOptions{})
//	defer p.Close()
//	q, _ := p.Query("SELECT SUM(amount), region FROM sales, stores WHERE store_id = s_id GROUP BY region")
//	res, _ := q.Wait()
//	fmt.Print(res.Format())
//
// A conventional query-at-a-time engine (Baseline) is included for
// comparison, as is a generator for the Star Schema Benchmark (OpenSSB)
// used by the paper's evaluation.
package cjoin

import (
	"fmt"
	"time"

	"cjoin/internal/catalog"
	"cjoin/internal/core"
	"cjoin/internal/disk"
	"cjoin/internal/shard"
	"cjoin/internal/txn"
)

// ColType is the logical type of a column.
type ColType int

const (
	// Int columns hold 64-bit integers.
	Int ColType = iota
	// String columns hold dictionary-encoded strings.
	String
)

// Column declares one table column.
type Column struct {
	Name string
	Type ColType
}

// DiskModel configures the simulated storage device shared by all tables
// of a warehouse. The zero value disables simulated latency (pure
// in-memory speed); production-shaped experiments use a sequential
// bandwidth plus a seek penalty.
type DiskModel struct {
	SeqBytesPerSec float64
	SeekPenalty    time.Duration
}

// Join declares one fact-to-dimension foreign key of a star schema.
type Join struct {
	Dimension  string // dimension table name
	ForeignKey string // fact column holding the key
	Key        string // dimension key column
}

// Warehouse is a collection of tables on one device plus the star-schema
// metadata and the snapshot-isolation manager.
type Warehouse struct {
	dev    *disk.Device
	txn    *txn.Manager
	tables map[string]*Table
	star   *catalog.Star
	fact   *Table
}

// Table wraps one stored relation.
type Table struct {
	w      *Warehouse
	tab    *catalog.Table
	isFact bool
}

// NewWarehouse creates an empty warehouse on a fresh device.
func NewWarehouse(model DiskModel) *Warehouse {
	return &Warehouse{
		dev:    disk.New(disk.Config{SeqBytesPerSec: model.SeqBytesPerSec, SeekPenalty: model.SeekPenalty}),
		txn:    &txn.Manager{},
		tables: make(map[string]*Table),
	}
}

// CreateDimension creates a dimension table.
func (w *Warehouse) CreateDimension(name string, cols []Column) (*Table, error) {
	return w.createTable(name, cols, false)
}

// CreateFact creates a fact table. Two hidden system columns (xmin,
// xmax) are prepended for snapshot isolation; SQL queries do not see
// them.
func (w *Warehouse) CreateFact(name string, cols []Column) (*Table, error) {
	return w.createTable(name, cols, true)
}

func (w *Warehouse) createTable(name string, cols []Column, fact bool) (*Table, error) {
	if _, dup := w.tables[name]; dup {
		return nil, fmt.Errorf("cjoin: table %q already exists", name)
	}
	var ccols []catalog.Column
	hidden := 0
	if fact {
		ccols = append(ccols, catalog.Column{Name: "xmin"}, catalog.Column{Name: "xmax"})
		hidden = 2
	}
	for _, c := range cols {
		ct := catalog.Int
		if c.Type == String {
			ct = catalog.Str
		}
		ccols = append(ccols, catalog.Column{Name: c.Name, Type: ct})
	}
	t := &Table{w: w, tab: catalog.NewTable(w.dev, name, hidden, ccols), isFact: fact}
	w.tables[name] = t
	if fact {
		if w.fact != nil {
			return nil, fmt.Errorf("cjoin: warehouse already has fact table %q", w.fact.tab.Name)
		}
		w.fact = t
	}
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.tab.Name }

// NumRows returns the current row count.
func (t *Table) NumRows() int64 { return t.tab.Heap.NumRows() }

// Append loads one row. Values must be int/int64 for Int columns and
// string for String columns. Fact rows loaded this way belong to the
// initial snapshot (visible to every query); use CommitFacts for
// transactional appends.
func (t *Table) Append(vals ...any) error {
	row, err := t.encode(vals, 0)
	if err != nil {
		return err
	}
	t.tab.Heap.Append(row)
	return nil
}

func (t *Table) encode(vals []any, xmin int64) ([]int64, error) {
	visible := t.tab.VisibleColumns()
	if len(vals) != len(visible) {
		return nil, fmt.Errorf("cjoin: %s has %d columns, got %d values", t.tab.Name, len(visible), len(vals))
	}
	row := make([]int64, len(t.tab.Columns))
	if t.isFact {
		row[0] = xmin
	}
	for i, v := range vals {
		ci := i + t.tab.Hidden
		switch x := v.(type) {
		case int:
			row[ci] = int64(x)
		case int64:
			row[ci] = x
		case string:
			id, err := t.tab.EncodeStr(ci, x)
			if err != nil {
				return nil, fmt.Errorf("cjoin: column %s: %w", visible[i].Name, err)
			}
			row[ci] = id
		default:
			return nil, fmt.Errorf("cjoin: unsupported value type %T for column %s", v, visible[i].Name)
		}
	}
	return row, nil
}

// Snapshot identifies a committed warehouse state.
type Snapshot = txn.Snapshot

// CommitFacts appends fact rows in one snapshot-isolated transaction and
// returns the snapshot at which they become visible.
func (w *Warehouse) CommitFacts(rows [][]any) (Snapshot, error) {
	if w.fact == nil {
		return 0, fmt.Errorf("cjoin: no fact table defined")
	}
	encoded := make([][]int64, 0, len(rows))
	return w.txn.CommitErr(func(id uint64) error {
		for _, vals := range rows {
			row, err := w.fact.encode(vals, int64(id))
			if err != nil {
				return err
			}
			encoded = append(encoded, row)
		}
		w.fact.tab.Heap.AppendBatch(encoded)
		return nil
	})
}

// DeleteFact marks the fact row at index idx deleted; the deletion is
// visible to snapshots taken after it returns. A failed delete
// (out-of-range index, already-deleted row) publishes no commit id.
func (w *Warehouse) DeleteFact(idx int64) (Snapshot, error) {
	if w.fact == nil {
		return 0, fmt.Errorf("cjoin: no fact table defined")
	}
	return w.txn.CommitErr(func(id uint64) error {
		row, err := w.fact.tab.Heap.RowAt(idx)
		if err != nil {
			return err
		}
		if row[1] != 0 {
			return fmt.Errorf("cjoin: fact row %d already deleted at commit %d", idx, row[1])
		}
		return w.fact.tab.Heap.UpdateCol(idx, 1, int64(id))
	})
}

// DefineStar declares the star schema: the fact table plus its
// fact-to-dimension joins. It must be called once, after table creation
// and before opening pipelines.
func (w *Warehouse) DefineStar(fact string, joins []Join) error {
	ft, ok := w.tables[fact]
	if !ok || !ft.isFact {
		return fmt.Errorf("cjoin: %q is not a fact table", fact)
	}
	var dims []*catalog.Table
	var fks, keys []int
	for _, j := range joins {
		dt, ok := w.tables[j.Dimension]
		if !ok || dt.isFact {
			return fmt.Errorf("cjoin: %q is not a dimension table", j.Dimension)
		}
		fk := ft.tab.ColIndex(j.ForeignKey)
		if fk < 0 {
			return fmt.Errorf("cjoin: fact column %q not found", j.ForeignKey)
		}
		key := dt.tab.ColIndex(j.Key)
		if key < 0 {
			return fmt.Errorf("cjoin: dimension column %q not found", j.Key)
		}
		dims = append(dims, dt.tab)
		fks = append(fks, fk)
		keys = append(keys, key)
	}
	star, err := catalog.NewStar(ft.tab, dims, fks, keys)
	if err != nil {
		return err
	}
	w.star = star
	return nil
}

// Begin returns a snapshot of the current committed state, for pinning
// queries explicitly.
func (w *Warehouse) Begin() Snapshot { return w.txn.Begin() }

// Tables returns the warehouse's tables keyed by name (a copy).
func (w *Warehouse) Tables() map[string]*Table {
	out := make(map[string]*Table, len(w.tables))
	for k, v := range w.tables {
		out[k] = v
	}
	return out
}

// star returns the defined star schema or an error.
func (w *Warehouse) starSchema() (*catalog.Star, error) {
	if w.star == nil {
		return nil, fmt.Errorf("cjoin: no star schema defined; call DefineStar first")
	}
	return w.star, nil
}

// PipelineOptions tunes a CJOIN pipeline. The zero value uses defaults
// (horizontal layout, NumCPU/2 stage threads, 64 concurrent queries).
type PipelineOptions struct {
	// MaxConcurrent bounds simultaneously registered queries.
	MaxConcurrent int
	// Workers is the number of Stage threads.
	Workers int
	// BatchRows is the pipeline batch size.
	BatchRows int
	// Layout is "horizontal" (default), "vertical" or "hybrid".
	Layout string
	// Stages is the stage count for the hybrid layout.
	Stages int
	// SortAggregation selects sort-based aggregation operators.
	SortAggregation bool
	// OptimizeEvery is the interval of run-time filter reordering;
	// 0 uses 100ms.
	OptimizeEvery time.Duration
	// Shards fans the operator out over N CJOIN pipelines behind one
	// submission surface: an unpartitioned fact table is page-strided
	// across shards, a range-partitioned one has whole partitions dealt
	// to shards (balanced by page count, pruning intact). Results are
	// merged exactly. 0 or 1 keeps the paper's single pipeline.
	Shards int
}

func (o PipelineOptions) toCore() (core.Config, error) {
	cfg := core.Config{
		MaxConcurrent:    o.MaxConcurrent,
		Workers:          o.Workers,
		BatchRows:        o.BatchRows,
		Stages:           o.Stages,
		SortAgg:          o.SortAggregation,
		OptimizeInterval: o.OptimizeEvery,
	}
	if cfg.OptimizeInterval == 0 {
		cfg.OptimizeInterval = 100 * time.Millisecond
	}
	switch o.Layout {
	case "", "horizontal":
		cfg.Layout = core.Horizontal
	case "vertical":
		cfg.Layout = core.Vertical
	case "hybrid":
		cfg.Layout = core.Hybrid
	default:
		return cfg, fmt.Errorf("cjoin: unknown layout %q", o.Layout)
	}
	return cfg, nil
}

// OpenPipeline starts the warehouse's always-on CJOIN operator: the
// paper's single pipeline, or a sharded group of them when
// opts.Shards > 1.
func (w *Warehouse) OpenPipeline(opts PipelineOptions) (*Pipeline, error) {
	star, err := w.starSchema()
	if err != nil {
		return nil, err
	}
	cfg, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	if opts.Shards > 1 {
		g, err := shard.New(star, shard.Config{Shards: opts.Shards, Core: cfg})
		if err != nil {
			return nil, err
		}
		g.Start()
		return &Pipeline{w: w, p: g}, nil
	}
	p, err := core.NewPipeline(star, cfg)
	if err != nil {
		return nil, err
	}
	p.Start()
	return &Pipeline{w: w, p: p}, nil
}

// Pipeline is a running CJOIN operator accepting concurrent star
// queries — a single pipeline or a sharded group behind the same
// executor surface.
type Pipeline struct {
	w *Warehouse
	p core.Executor
}

// Close shuts the pipeline down; in-flight queries fail.
func (p *Pipeline) Close() { p.p.Stop() }

// ActiveQueries returns the number of queries currently registered.
func (p *Pipeline) ActiveQueries() int { return p.p.ActiveQueries() }

// FilterStats reports one Filter's run-time counters: stored dimension
// tuples, probes, and the drop rate that drives on-line reordering.
type FilterStats struct {
	Dimension string
	Stored    int
	TuplesIn  int64
	Probes    int64
	Drops     int64
	DropRate  float64
}

// PipelineStats reports shared-plan activity.
type PipelineStats struct {
	TuplesScanned int64
	PagesRead     int64
	ScanCycles    int64
	FilterOrder   []string
	Filters       []FilterStats
}

// Stats snapshots pipeline counters.
func (p *Pipeline) Stats() PipelineStats {
	s := p.p.Stats()
	out := PipelineStats{
		TuplesScanned: s.TuplesScanned,
		PagesRead:     s.PagesRead,
		ScanCycles:    s.ScanCycles,
		FilterOrder:   s.FilterOrder,
	}
	for _, f := range s.Filters {
		out.Filters = append(out.Filters, FilterStats{
			Dimension: f.Dimension,
			Stored:    f.Stored,
			TuplesIn:  f.TuplesIn,
			Probes:    f.Probes,
			Drops:     f.Drops,
			DropRate:  f.DropRate(),
		})
	}
	return out
}
